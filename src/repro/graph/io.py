"""Edge-list I/O in the SNAP text format used by the paper's datasets.

Unweighted files contain one ``u v`` pair per line; weighted files contain
``u v w`` triples.  Lines starting with ``#`` are comments.  Node ids are
remapped to the dense range ``0 .. n-1`` on load (SNAP files routinely have
sparse ids).
"""

from __future__ import annotations

import os
from typing import TextIO

import numpy as np

from .digraph import DiGraph

__all__ = ["read_edge_list", "write_edge_list", "save_npz", "load_npz"]


def _parse(handle: TextIO) -> tuple[list[int], list[int], list[float], bool]:
    src: list[int] = []
    dst: list[int] = []
    weights: list[float] = []
    weighted = False
    for lineno, line in enumerate(handle, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) not in (2, 3):
            raise ValueError(f"line {lineno}: expected 'u v' or 'u v w', got {line!r}")
        src.append(int(parts[0]))
        dst.append(int(parts[1]))
        if len(parts) == 3:
            weighted = True
            weights.append(float(parts[2]))
        elif weighted:
            raise ValueError(f"line {lineno}: mixed weighted/unweighted rows")
    return src, dst, weights, weighted


def read_edge_list(
    path: str | os.PathLike,
    undirected: bool = False,
) -> DiGraph:
    """Load a graph from a SNAP-style edge list.

    With ``undirected=True`` each edge contributes arcs in both directions,
    matching the paper's treatment of undirected datasets.
    """
    with open(path) as handle:
        src, dst, weights, weighted = _parse(handle)
    if not src:
        return DiGraph.from_edges(0, [])
    ids = sorted(set(src) | set(dst))
    remap = {node: i for i, node in enumerate(ids)}
    s = np.asarray([remap[u] for u in src], dtype=np.int64)
    d = np.asarray([remap[v] for v in dst], dtype=np.int64)
    w = np.asarray(weights, dtype=np.float64) if weighted else None
    if undirected:
        s, d = np.concatenate([s, d]), np.concatenate([d, s])
        if w is not None:
            w = np.concatenate([w, w])
    return DiGraph.from_arrays(len(ids), s, d, w)


def write_edge_list(
    graph: DiGraph,
    path: str | os.PathLike,
    weighted: bool = True,
    header: str | None = None,
) -> None:
    """Write ``graph`` as a text edge list (``u v [w]`` per line)."""
    with open(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for u, v, w in graph.edges():
            if weighted:
                handle.write(f"{u} {v} {w:.10g}\n")
            else:
                handle.write(f"{u} {v}\n")


def save_npz(graph: DiGraph, path: str | os.PathLike) -> None:
    """Persist a graph as a compressed numpy archive.

    Orders of magnitude faster to reload than a text edge list for the
    larger analogues; stores the out-CSR arrays plus ``n``.
    """
    np.savez_compressed(
        path,
        n=np.int64(graph.n),
        out_ptr=graph.out_ptr,
        out_dst=graph.out_dst,
        out_w=graph.out_w,
    )


def load_npz(path: str | os.PathLike) -> DiGraph:
    """Load a graph previously written by :func:`save_npz`."""
    with np.load(path) as data:
        n = int(data["n"])
        out_ptr = data["out_ptr"]
        out_dst = data["out_dst"]
        out_w = data["out_w"]
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(out_ptr))
    return DiGraph.from_arrays(n, src, out_dst, out_w, dedup=False)
